/**
 * @file
 * Validation bench: spot-checks the simulated machines' primitive
 * latencies against the Tables 1-3 cost model (the closest available
 * analogue of the paper's validation against a physical CM-5, which
 * found agreement within 27%).
 *
 * Prints measured vs expected cycles for: private miss, NI packet
 * send, one-way packet latency, AM round trip, local and remote
 * shared-memory read misses, write faults, barrier, and atomic swap.
 */

#include "bench/bench_util.hh"
#include "mp/mp_machine.hh"
#include "sm/sm_machine.hh"

using namespace wwt;
using namespace wwt::bench;

namespace
{

int failures = 0;

void
check(const char* what, Cycle measured, Cycle expected)
{
    bool ok = measured == expected;
    if (!ok)
        ++failures;
    std::printf("%-42s measured %6llu expected %6llu  %s\n", what,
                static_cast<unsigned long long>(measured),
                static_cast<unsigned long long>(expected),
                ok ? "ok" : "MISMATCH");
}

} // namespace

int
main(int argc, char** argv)
{
    Options o = parseArgs(argc, argv);
    core::MachineConfig cfg; // Table 1-3 defaults
    cfg.nprocs = 2;
    cfg.hostThreads = o.hostThreads;
    core::ArtifactWriter art = artifacts(o);

    banner("Message-passing machine (Table 2)");
    {
        mp::MpMachine m(cfg);
        art.attach(m.engine());
        Cycle send = 0, miss = 0, hit = 0;
        m.run([&](mp::MpMachine::Node& n) {
            if (n.id == 0) {
                Addr a = n.mem.alloc(64);
                Cycle t0 = n.proc.now();
                n.mem.read<double>(a); // TLB miss + cache miss
                miss = n.proc.now() - t0;
                t0 = n.proc.now();
                n.mem.read<double>(a + 8);
                hit = n.proc.now() - t0;
                t0 = n.proc.now();
                n.ni.send(1, 0, {}, 0);
                send = n.proc.now() - t0;
            } else {
                n.am.pollUntil([&] { return n.ni.queueDepth() > 0; });
            }
        });
        check("local read miss (TLB+ld+11+DRAM)", miss,
              cfg.tlb.missPenalty + 1 + cfg.privMissBase +
                  cfg.dramAccess);
        check("local read hit", hit, 1);
        check("NI packet injection", send,
              cfg.niWriteTagDest + cfg.niSendWords);
        art.addRun("latency-mp", cfg, m.engine(),
                   core::collectReport(m.engine()));
    }

    banner("Shared-memory machine (Table 3)");
    {
        sm::SmMachine m(cfg);
        art.attach(m.engine());
        Addr remote = 0, local = 0;
        Cycle lmiss = 0, rmiss = 0, wfault = 0, swap = 0;
        m.run([&](sm::SmMachine::Node& n) {
            if (n.id == 0)
                local = n.gmallocLocal(64);
            if (n.id == 1)
                remote = n.gmallocLocal(64);
            n.barrier();
            if (n.id == 0) {
                Cycle t0 = n.proc.now();
                n.rd<double>(local);
                lmiss = n.proc.now() - t0;
                t0 = n.proc.now();
                n.rd<double>(remote);
                rmiss = n.proc.now() - t0;
                t0 = n.proc.now();
                n.wr<double>(remote, 1.0); // upgrade (no sharers)
                wfault = n.proc.now() - t0;
                t0 = n.proc.now();
                n.mem.swap(remote + 8, 7); // exclusive in cache: local
                swap = n.proc.now() - t0;
            }
        });
        Cycle dir_grant =
            cfg.dirBase + cfg.dirMsgSend + cfg.dirBlockSend;
        check("shared read miss, local home", lmiss,
              cfg.tlb.missPenalty + 1 + cfg.smSharedMissBase +
                  2 * cfg.selfLatency + dir_grant);
        check("shared read miss, remote home", rmiss,
              cfg.tlb.missPenalty + 1 + cfg.smSharedMissBase +
                  2 * cfg.netLatency + dir_grant);
        check("write fault, no other sharer", wfault,
              1 + cfg.smSharedMissBase + 2 * cfg.netLatency +
                  cfg.dirBase + cfg.dirMsgSend);
        check("atomic swap on an exclusive block", swap, 1 + 2);
        art.addRun("latency-sm", cfg, m.engine(),
                   core::collectReport(m.engine()));
    }

    banner("Common hardware (Table 1)");
    {
        sm::SmMachine m(cfg);
        Cycle bar = 0;
        m.run([&](sm::SmMachine::Node& n) {
            Cycle t0 = n.proc.now();
            n.barrier();
            bar = n.proc.now() - t0; // both arrive at cycle 0
        });
        check("barrier (simultaneous arrival)", bar,
              cfg.barrierLatency);
    }
    {
        mp::MpMachine m(cfg);
        Cycle oneway = 0;
        m.run([&](mp::MpMachine::Node& n) {
            if (n.id == 0) {
                n.ni.send(1, 0, {}, 0);
            } else {
                n.am.pollUntil([&] { return n.ni.queueDepth() > 0; });
                oneway = n.proc.now();
            }
        });
        std::printf("%-42s measured %6llu (>= %llu: latency + "
                    "polling grain)\n",
                    "one-way packet observation",
                    static_cast<unsigned long long>(oneway),
                    static_cast<unsigned long long>(cfg.netLatency));
        if (oneway < cfg.netLatency)
            ++failures;
    }

    std::printf("\n%d mismatches\n", failures);
    art.write();
    return failures == 0 ? 0 : 1;
}

/**
 * @file
 * Reproduces Tables 12-15: EM3D on both machines, split into
 * initialization and main loop.
 *
 * Paper reference (32 procs, 1000 E + 1000 H nodes/proc, degree 10,
 * 20% remote, 50 iterations):
 *   Table 12 (EM3D-MP): init 20.0M, main 66.5M, total 86.4M;
 *                       50% of shared memory.
 *   Table 14 (EM3D-SM): init 42.1M, main 130.0M, total 172.1M;
 *                       data access 64% of total, locks 6.9M in init.
 *   Table 13 (MP main): 643,436 local misses, 200 channel writes,
 *                       2.0M bytes (1.6M data).
 *   Table 15 (SM main): 330,044 shared misses (319,226 remote),
 *                       24,975 write faults, 22.9M bytes.
 */

#include "apps/em3d.hh"
#include "bench/bench_util.hh"

using namespace wwt;
using namespace wwt::bench;

int
main(int argc, char** argv)
{
    Options o = parseArgs(argc, argv);
    apps::Em3dParams p;
    if (o.small) {
        p.nodesPerProc = 128;
        p.degree = 5;
        p.iters = 10;
        o.procs = std::min<std::size_t>(o.procs, 8);
    }
    core::MachineConfig cfg = paperConfig(o);
    core::ArtifactWriter art = artifacts(o);

    banner("Tables 12 & 13: EM3D Message Passing (EM3D-MP)");
    mp::MpMachine mpm(cfg);
    art.attach(mpm.engine());
    apps::Em3dResult mr = apps::runEm3dMp(mpm, p);
    auto mp_rep = core::collectReport(mpm.engine(),
                                      {"Initialization", "Main Loop"});
    art.addRun("em3d-mp", cfg, mpm.engine(), mp_rep);
    std::printf("checksum: %.6f\n", mr.checksum);

    banner("Tables 14 & 15: EM3D Shared Memory (EM3D-SM)");
    sm::SmMachine smm(cfg);
    art.attach(smm.engine());
    apps::Em3dResult sr = apps::runEm3dSm(smm, p);
    auto sm_rep = core::collectReport(smm.engine(),
                                      {"Initialization", "Main Loop"});
    art.addRun("em3d-sm", cfg, smm.engine(), sm_rep);
    std::printf("checksum: %.6f (MP/SM difference %.2e)\n",
                sr.checksum, std::abs(sr.checksum - mr.checksum));

    std::printf("%s\n",
                core::phaseBreakdownTable(
                    "Table 12: EM3D-MP cycle breakdown", mp_rep,
                    core::mpRows())
                    .c_str());
    std::printf("%s\n",
                core::phaseBreakdownTable(
                    "Table 14: EM3D-SM cycle breakdown", sm_rep,
                    core::smRowsDataAccess())
                    .c_str());
    std::printf("%s\n", core::mpCountsTable(
                            "Table 13: EM3D-MP counts (main loop)",
                            mp_rep, 1)
                            .c_str());
    std::printf("%s\n", core::smCountsTable(
                            "Table 15: EM3D-SM counts (main loop)",
                            sm_rep, 1)
                            .c_str());
    printPair("EM3D", mp_rep, sm_rep);
    note("Paper: EM3D-MP at 50% of EM3D-SM (the one decisive win for "
         "message passing).");
    art.write();

    audit::ShapeGate gate = shapeGate(o, "em3d");
    gate.record("mp_over_sm",
                mp_rep.totalCycles() / sm_rep.totalCycles());
    double sm_main = sm_rep.totalCycles(1);
    gate.record("sm_main_data_access_share",
                (sm_rep.cycles(stats::Category::LocalMiss, 1) +
                 sm_rep.cycles(stats::Category::SharedMiss, 1) +
                 sm_rep.cycles(stats::Category::WriteFault, 1) +
                 sm_rep.cycles(stats::Category::TlbMiss, 1)) /
                    sm_main);
    return finishShapes(gate);
}

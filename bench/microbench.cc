/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own hot paths:
 * cache lookups, TLB translation, the event calendar, fiber context
 * switches, and whole protocol transactions. These measure *host*
 * performance of the simulation infrastructure (how fast experiments
 * run), not target-machine behavior.
 */

#include <benchmark/benchmark.h>

#include "apps/em3d.hh"
#include "core/config.hh"
#include "mem/cache.hh"
#include "prof/hostprof.hh"
#include "mem/tlb.hh"
#include "sim/engine.hh"
#include "sim/event_queue.hh"
#include "sm/sm_machine.hh"

using namespace wwt;

static void
BM_CacheHit(benchmark::State& state)
{
    mem::Cache c(256 * 1024, 4, 32, 1);
    c.insert(c.blockOf(0x1000), mem::LineState::Exclusive, false);
    for (auto _ : state)
        benchmark::DoNotOptimize(c.find(c.blockOf(0x1000)));
}
BENCHMARK(BM_CacheHit);

static void
BM_CacheMissInsert(benchmark::State& state)
{
    mem::Cache c(256 * 1024, 4, 32, 1);
    Addr b = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.insert(b++, mem::LineState::Exclusive, false));
    }
}
BENCHMARK(BM_CacheMissInsert);

static void
BM_TlbHit(benchmark::State& state)
{
    mem::Tlb t(64);
    t.access(0x5000);
    for (auto _ : state)
        benchmark::DoNotOptimize(t.access(0x5008));
}
BENCHMARK(BM_TlbHit);

static void
BM_EventQueueScheduleRun(benchmark::State& state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (Cycle t = 0; t < 256; ++t)
            q.schedule(t * 7 % 251, [&sink] { ++sink; });
        q.runUntil(kCycleMax);
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_FiberSwitch(benchmark::State& state)
{
    sim::Fiber* fp = nullptr;
    sim::Fiber f(64 * 1024, [&] {
        while (true)
            fp->yieldToCaller();
    });
    fp = &f;
    for (auto _ : state)
        f.switchTo();
}
BENCHMARK(BM_FiberSwitch);

static void
BM_EngineQuantum(benchmark::State& state)
{
    // Whole-engine throughput: 4 processors charging cycles.
    for (auto _ : state) {
        sim::Engine e(4);
        for (NodeId i = 0; i < 4; ++i) {
            e.setBody(i, [&e, i] {
                for (int k = 0; k < 1000; ++k)
                    e.proc(i).charge(30);
            });
        }
        e.run();
        benchmark::DoNotOptimize(e.elapsed());
    }
}
BENCHMARK(BM_EngineQuantum);

static void
BM_EngineQuantumTraced(benchmark::State& state)
{
    // Same workload with the flight recorder on: the host-time cost
    // of recording spans (simulated results are identical).
    for (auto _ : state) {
        sim::Engine e(4);
        e.enableTracing();
        for (NodeId i = 0; i < 4; ++i) {
            e.setBody(i, [&e, i] {
                for (int k = 0; k < 1000; ++k)
                    e.proc(i).charge(30);
            });
        }
        e.run();
        benchmark::DoNotOptimize(e.elapsed());
    }
}
BENCHMARK(BM_EngineQuantumTraced);

static void
BM_EngineQuantumThreads(benchmark::State& state)
{
    // The parallel host: 8 processors charging cycles, partitioned
    // across state.range(0) host worker threads. Simulated results
    // are bit-identical across thread counts; this measures the
    // host-side cost/benefit of the quantum rendezvous.
    for (auto _ : state) {
        sim::Engine e(8);
        e.setHostThreads(static_cast<std::size_t>(state.range(0)));
        for (NodeId i = 0; i < 8; ++i) {
            e.setBody(i, [&e, i] {
                for (int k = 0; k < 1000; ++k)
                    e.proc(i).charge(30);
            });
        }
        e.run();
        benchmark::DoNotOptimize(e.elapsed());
    }
}
BENCHMARK(BM_EngineQuantumThreads)->Arg(1)->Arg(2)->Arg(4);

static void
BM_Em3dSmHostThreads(benchmark::State& state)
{
    // Whole-application host throughput at 1/2/4 host threads; the
    // nightly benchmark workflow reads these to print the
    // sequential-vs-parallel speedup in its job summary.
    for (auto _ : state) {
        state.PauseTiming();
        core::MachineConfig cfg;
        cfg.nprocs = 8;
        cfg.hostThreads = static_cast<std::size_t>(state.range(0));
        sm::SmMachine m(cfg);
        apps::Em3dParams p;
        p.nodesPerProc = 32;
        p.iters = 3;
        state.ResumeTiming();
        apps::runEm3dSm(m, p);
        benchmark::DoNotOptimize(m.engine().elapsed());
    }
}
BENCHMARK(BM_Em3dSmHostThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

static void
BM_WholeQuantumEm3dSm(benchmark::State& state)
{
    // Whole-quantum throughput of the fixed EM3D-SM workload the
    // perf-trajectory gate tracks (tools/bench_trajectory.py): the
    // timer covers the complete simulation — quantum loop, fibers,
    // memory model, directory protocol, end-of-run audits — but NOT
    // machine construction (PauseTiming around setup). The
    // sim_cycles_per_sec counter is simulated cycles per host second,
    // the paper-methodology figure of merit. Arg(1) runs the default
    // configuration, Arg(0) disables the fast-hit filter (results
    // are byte-identical either way; only host time may differ).
    std::uint64_t simCycles = 0;
    for (auto _ : state) {
        state.PauseTiming();
        core::MachineConfig cfg;
        cfg.nprocs = 32;
        cfg.fastHit = state.range(0) != 0;
        sm::SmMachine m(cfg);
        apps::Em3dParams p;
        p.nodesPerProc = 512;
        p.iters = 5;
        state.ResumeTiming();
        apps::runEm3dSm(m, p);
        simCycles += m.engine().elapsed();
    }
    state.counters["sim_cycles_per_sec"] =
        benchmark::Counter(static_cast<double>(simCycles),
                           benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WholeQuantumEm3dSm)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

static void
BM_WholeQuantumEm3dSmHostProf(benchmark::State& state)
{
    // The profiler's overhead budget, measurable: the exact
    // BM_WholeQuantumEm3dSm/1 workload with --host-prof accounting
    // live. CI's hostprof-smoke job compares this against the plain
    // variant; the contract is <2% (docs/performance.md). Not in the
    // trajectory TRACKED list — it measures the profiler, not the
    // simulator.
    prof::enable();
    std::uint64_t simCycles = 0;
    for (auto _ : state) {
        state.PauseTiming();
        core::MachineConfig cfg;
        cfg.nprocs = 32;
        cfg.fastHit = true;
        sm::SmMachine m(cfg);
        apps::Em3dParams p;
        p.nodesPerProc = 512;
        p.iters = 5;
        state.ResumeTiming();
        apps::runEm3dSm(m, p);
        simCycles += m.engine().elapsed();
    }
    state.counters["sim_cycles_per_sec"] =
        benchmark::Counter(static_cast<double>(simCycles),
                           benchmark::Counter::kIsRate);
    // Leave the process as found for whatever benchmark runs next.
    prof::resetForTest();
}
BENCHMARK(BM_WholeQuantumEm3dSmHostProf)
    ->Unit(benchmark::kMillisecond);

static void
BM_WholeQuantumEm3dMp(benchmark::State& state)
{
    // Message-passing twin of BM_WholeQuantumEm3dSm: same fixed EM3D
    // workload on the MP machine (channels + active messages instead
    // of the directory protocol). Same timer coverage and counter.
    std::uint64_t simCycles = 0;
    for (auto _ : state) {
        state.PauseTiming();
        core::MachineConfig cfg;
        cfg.nprocs = 32;
        cfg.fastHit = state.range(0) != 0;
        mp::MpMachine m(cfg);
        apps::Em3dParams p;
        p.nodesPerProc = 512;
        p.iters = 5;
        state.ResumeTiming();
        apps::runEm3dMp(m, p);
        simCycles += m.engine().elapsed();
    }
    state.counters["sim_cycles_per_sec"] =
        benchmark::Counter(static_cast<double>(simCycles),
                           benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WholeQuantumEm3dMp)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

static void
BM_ProtocolRemoteMiss(benchmark::State& state)
{
    // Cost of simulating one remote shared-memory read miss
    // (request, directory service, fill, resume).
    for (auto _ : state) {
        state.PauseTiming();
        core::MachineConfig cfg;
        cfg.nprocs = 2;
        sm::SmMachine m(cfg);
        Addr a = 0;
        state.ResumeTiming();
        m.run([&](sm::SmMachine::Node& n) {
            if (n.id == 1)
                a = n.gmallocLocal(4096);
            n.barrier();
            if (n.id == 0) {
                for (int i = 0; i < 64; ++i)
                    n.rd<double>(a + i * 64);
            }
        });
        benchmark::DoNotOptimize(m.engine().elapsed());
    }
}
BENCHMARK(BM_ProtocolRemoteMiss);

BENCHMARK_MAIN();

#pragma once

/**
 * @file
 * Shared helpers for the table-reproduction benches.
 *
 * Every bench binary reruns one of the paper's experiments at paper
 * scale (32 simulated processors, Tables 1-3 hardware) and prints the
 * corresponding tables. Pass --small to run a scaled-down version
 * (useful for smoke testing); pass --procs N to change the machine
 * size. All flag parsing lives here so every driver accepts the same
 * flags — including the observability pair:
 *
 *   --trace=FILE      write a Chrome trace-event (catapult) JSON file
 *   --metrics=FILE    write the machine-readable metrics manifest
 *   --host-prof=FILE  write the wwtcmp.hostprof/1 host-time profile
 *                     at exit (simulated results are byte-identical
 *                     with the profiler on or off; see
 *                     docs/performance.md "Host-time profile")
 *   --host-threads=N  host worker threads for the quantum loop
 *                     (results are bit-identical for every N)
 *   --no-fast-hit     disable the fast-hit filter (bit-identical
 *                     either way; exists for the CI identity gate)
 *   --check-shapes    check measured ratios against the golden-shape
 *                     bands and exit nonzero on drift
 *   --shapes=FILE     golden-shape file (default
 *                     bench/golden_shapes.json)
 *
 * Numeric flags are validated strictly: junk or out-of-range values
 * exit with status 2 and a diagnostic instead of silently running a
 * 0-processor machine. Drivers feed each run into the ArtifactWriter
 * returned by artifacts(): attach() before running, addRun() after
 * collecting the report, write() once at the end. Shape-checking
 * drivers obtain a gate via shapeGate(), record() their ratios, and
 * return finishShapes() from main.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "audit/shapes.hh"
#include "core/config.hh"
#include "core/metrics.hh"
#include "core/parse.hh"
#include "core/report.hh"
#include "prof/hostprof.hh"

namespace wwt::bench
{

/** Sanity bounds for the machine-size flags. */
constexpr std::size_t kMaxProcs = 4096;
constexpr std::size_t kMaxHostThreads = 256;

/** Command-line options shared by all benches. */
struct Options {
    bool small = false;
    std::size_t procs = 32;
    std::size_t hostThreads = 1; ///< --host-threads=N (1 = sequential)
    bool fastHit = true;         ///< --no-fast-hit clears this
    bool checkShapes = false;    ///< --check-shapes
    std::string shapesFile = "bench/golden_shapes.json"; ///< --shapes=FILE
    std::string traceFile;    ///< --trace=FILE (empty = off)
    std::string metricsFile;  ///< --metrics=FILE (empty = off)
    std::string hostProfFile; ///< --host-prof=FILE (empty = off)
};

/** Match `--flag=VALUE` or `--flag VALUE`; advances @p i as needed. */
inline bool
flagValue(int argc, char** argv, int& i, const char* flag,
          std::string& out)
{
    std::size_t len = std::strlen(flag);
    if (std::strncmp(argv[i], flag, len) != 0)
        return false;
    if (argv[i][len] == '=') {
        out = argv[i] + len + 1;
        return true;
    }
    if (argv[i][len] == '\0' && i + 1 < argc) {
        out = argv[++i];
        return true;
    }
    return false;
}

inline Options
parseArgs(int argc, char** argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (flagValue(argc, argv, i, "--trace", o.traceFile) ||
            flagValue(argc, argv, i, "--metrics", o.metricsFile) ||
            flagValue(argc, argv, i, "--host-prof", o.hostProfFile) ||
            flagValue(argc, argv, i, "--shapes", o.shapesFile))
            continue;
        if (flagValue(argc, argv, i, "--host-threads", v)) {
            o.hostThreads = static_cast<std::size_t>(
                core::requireCount("--host-threads", v, 1,
                                   kMaxHostThreads));
            continue;
        }
        if (flagValue(argc, argv, i, "--procs", v)) {
            o.procs = static_cast<std::size_t>(
                core::requireCount("--procs", v, 1, kMaxProcs));
            continue;
        }
        if (std::strcmp(argv[i], "--small") == 0)
            o.small = true;
        else if (std::strcmp(argv[i], "--no-fast-hit") == 0)
            o.fastHit = false;
        else if (std::strcmp(argv[i], "--check-shapes") == 0)
            o.checkShapes = true;
        else {
            std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
            std::exit(2);
        }
    }
    // Arm the profiler here so every bench driver honors the flag
    // without touching its exit paths; the manifest (and the coverage
    // self-audit line, on stderr) appear at process exit.
    if (!o.hostProfFile.empty())
        prof::enableWithManifestAtExit(o.hostProfFile);
    return o;
}

/**
 * The golden-shape gate for @p section: loaded from the golden file
 * when --check-shapes was passed (profile "smoke" under --small,
 * "paper" otherwise), disabled no-op gate when it wasn't.
 */
inline audit::ShapeGate
shapeGate(const Options& o, const std::string& section)
{
    if (!o.checkShapes)
        return audit::ShapeGate{};
    return audit::ShapeGate::fromFile(
        o.shapesFile, o.small ? "smoke" : "paper", section);
}

/**
 * Print the gate's verdicts and convert them to an exit status:
 * 0 when disabled or all bands hold, 1 on any violation.
 */
inline int
finishShapes(const audit::ShapeGate& gate)
{
    if (!gate.enabled())
        return 0;
    return gate.finish(std::cout) == 0 ? 0 : 1;
}

/** The artifact collector configured by --trace/--metrics. */
inline core::ArtifactWriter
artifacts(const Options& o)
{
    return core::ArtifactWriter(o.traceFile, o.metricsFile);
}

/** The paper's machine (Tables 1-3), sized by the options. */
inline core::MachineConfig
paperConfig(const Options& o)
{
    core::MachineConfig cfg = core::MachineConfig::cm5Like();
    cfg.nprocs = o.procs;
    cfg.hostThreads = o.hostThreads;
    cfg.fastHit = o.fastHit;
    return cfg;
}

inline void
banner(const std::string& title)
{
    std::printf("\n===== %s =====\n", title.c_str());
}

inline void
note(const std::string& text)
{
    std::printf("%s\n", text.c_str());
}

/** Print total cycles and the mutual ratio of a program pair. */
inline void
printPair(const char* name, const core::MachineReport& mp_rep,
          const core::MachineReport& sm_rep)
{
    double mp_t = mp_rep.totalCycles();
    double sm_t = sm_rep.totalCycles();
    std::printf("%s: MP %.1fM cycles, SM %.1fM cycles; "
                "MP relative to SM: %.0f%%\n",
                name, mp_t / 1e6, sm_t / 1e6, 100.0 * mp_t / sm_t);
}

} // namespace wwt::bench

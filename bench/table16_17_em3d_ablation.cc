/**
 * @file
 * Reproduces Tables 16 & 17: the EM3D-SM ablations.
 *
 *   Table 16: with a 1 MB cache the main loop drops from 130.0M to
 *             61.0M cycles — below EM3D-MP — because the working set
 *             fits and capacity misses vanish.
 *   Table 17: with local (instead of round-robin) page homing the
 *             main loop drops to 86.3M cycles; remote misses fall
 *             from 97% of misses to ~10%.
 */

#include "apps/em3d.hh"
#include "bench/bench_util.hh"

using namespace wwt;
using namespace wwt::bench;

namespace
{

core::MachineReport
runVariant(const char* title, const core::MachineConfig& cfg,
           const apps::Em3dParams& p, core::ArtifactWriter& art,
           const char* run_name)
{
    sm::SmMachine m(cfg);
    art.attach(m.engine());
    apps::runEm3dSm(m, p);
    auto rep = core::collectReport(m.engine(),
                                   {"Initialization", "Main Loop"});
    art.addRun(run_name, cfg, m.engine(), rep);
    std::printf("%s\n",
                core::phaseBreakdownTable(title, rep,
                                          core::smRowsDataAccess())
                    .c_str());
    auto c = rep.counts(1);
    std::printf("main-loop misses: %.0f shared "
                "(%.0f%% remote), write faults %.0f\n\n",
                rep.perProc(c.sharedMissLocal + c.sharedMissRemote),
                100.0 * c.sharedMissRemote /
                    std::max<std::uint64_t>(
                        1, c.sharedMissLocal + c.sharedMissRemote),
                rep.perProc(c.writeFaults));
    return rep;
}

/** Fraction of main-loop shared misses whose home is remote. */
double
remoteMissShare(const core::MachineReport& rep)
{
    auto c = rep.counts(1);
    return static_cast<double>(c.sharedMissRemote) /
           std::max<std::uint64_t>(1, c.sharedMissLocal +
                                          c.sharedMissRemote);
}

} // namespace

int
main(int argc, char** argv)
{
    Options o = parseArgs(argc, argv);
    apps::Em3dParams p;
    if (o.small) {
        p.nodesPerProc = 256;
        p.degree = 8;
        p.iters = 10;
        o.procs = std::min<std::size_t>(o.procs, 8);
    }

    core::MachineConfig base = paperConfig(o);
    core::ArtifactWriter art = artifacts(o);
    auto base_rep =
        runVariant("EM3D-SM baseline (256 KB cache, round-robin)", base,
                   p, art, "em3d-sm-baseline");

    core::MachineConfig big = base;
    big.cache.bytes = 1024 * 1024;
    auto big_rep = runVariant("Table 16: EM3D-SM with a 1 MB cache",
                              big, p, art, "em3d-sm-1mb-cache");

    core::MachineConfig local = base;
    local.allocPolicy = mem::AllocPolicy::Local;
    auto local_rep =
        runVariant("Table 17: EM3D-SM with local allocation", local, p,
                   art, "em3d-sm-local-alloc");

    note("Paper: main loop 130.0M baseline; 61.0M with 1 MB cache; "
         "86.3M with local allocation (remote misses 97% -> 10%).");
    art.write();

    audit::ShapeGate gate = shapeGate(o, "em3d_ablation");
    gate.record("big_cache_over_baseline",
                big_rep.totalCycles(1) / base_rep.totalCycles(1));
    gate.record("local_alloc_over_baseline",
                local_rep.totalCycles(1) / base_rep.totalCycles(1));
    gate.record("baseline_remote_miss_share",
                remoteMissShare(base_rep));
    gate.record("local_alloc_remote_miss_share",
                remoteMissShare(local_rep));
    return finishShapes(gate);
}
